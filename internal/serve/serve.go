// Package serve implements specasan-serve's sweep service: an HTTP/JSON
// daemon that accepts scenario documents (the same documents the CLIs load
// from disk), expands them into sweep or chaos-campaign cells, and runs the
// cells on a bounded worker pool backed by the crash-safe result store.
//
// The service is built around three robustness rules:
//
//   - Admission control, not queueing collapse: a job is admitted only if
//     every one of its cells fits in the queue budget; otherwise the request
//     is shed immediately with 429 and a Retry-After estimate. An admitted
//     job never waits behind an unbounded backlog.
//   - Every failure is a cell-sized failure: panics, watchdog verdicts,
//     timeouts, and deadline expiries are captured per cell. One poisoned
//     cell cannot take down the job, let alone the daemon.
//   - Results are only ever served from verified bytes: the store checksums
//     every entry, quarantines anything doubtful, and the daemon
//     re-simulates — the cache can cost time, never correctness.
//
// Determinism is what makes the whole design sound: a cell's result is a
// pure function of its scenario's result-context hash and its coordinates,
// so a stored result is interchangeable with a fresh simulation, and cold
// and cached responses are byte-identical.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"specasan/internal/chaos"
	"specasan/internal/harness"
	"specasan/internal/obs"
	"specasan/internal/par"
	"specasan/internal/scenario"
	"specasan/internal/stats"
	"specasan/internal/store"
)

// Schema identifiers for the service's JSON payloads.
const (
	ResultSchema = "specasan-serve/result/v1"
	StatsSchema  = "specasan-serve/stats/v1"
)

// Config shapes a Server.
type Config struct {
	// StoreDir is the result-store root; empty runs without a store (every
	// cell simulates). A store that turns out to be unwritable degrades to
	// read-only: cached results are still served, new ones are not
	// persisted, and /healthz reports the degradation.
	StoreDir string
	// StoreMaxBytes prunes the store to at most this many entry bytes when
	// the server opens it, oldest entries first (0 = unbounded).
	StoreMaxBytes int64
	// QueueDepth bounds the number of cells admitted and not yet finished.
	// A job whose cells do not all fit is shed with 429. Default 256.
	QueueDepth int
	// Workers is the cell worker pool width (0 = GOMAXPROCS).
	Workers int
	// JobTimeout is the per-job wall deadline, measured from admission.
	// When it expires, cells not yet started fail with a deadline error;
	// in-flight cells are left to finish. Default 10 minutes.
	JobTimeout time.Duration
	// CellTimeout is the per-cell wall deadline. A cell that exceeds it is
	// recorded as failed and its worker moves on (the abandoned simulation
	// still terminates on its own cycle budget, and if it completes it may
	// still heal the store). Default 5 minutes.
	CellTimeout time.Duration
	// TraceRecord and TraceReplay are server-wide trace knobs, OR-ed with
	// each submitted scenario's run.trace_record/run.trace_replay: record
	// missing workload traces into the store, and fetch through recorded
	// traces instead of assembling. Either requires StoreDir (traces live in
	// the artifact store); replay is bit-identical to live decode, so result
	// documents do not change. Perf jobs only — chaos scenarios reject the
	// knobs at validation.
	TraceRecord bool
	TraceReplay bool
	// Log receives one line per service event (default: discard).
	Log io.Writer
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = par.Workers(0, c.QueueDepth)
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.CellTimeout <= 0 {
		c.CellTimeout = 5 * time.Minute
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
}

// CellOutcome is one cell of a job's result document. Exactly one of Perf,
// Chaos, or Error is populated. The document deliberately carries no
// timestamps, job ids, or cache markers: resubmitting a scenario must
// produce byte-identical result documents whether cells simulated or came
// from the store (cache information travels in headers and /stats).
type CellOutcome struct {
	Bench      string              `json:"bench"`
	Mitigation string              `json:"mitigation"`
	Kinds      string              `json:"kinds,omitempty"`
	Seed       uint64              `json:"seed,omitempty"`
	Error      string              `json:"error,omitempty"`
	Perf       *harness.CellResult `json:"perf,omitempty"`
	Chaos      *chaos.CellRecord   `json:"chaos,omitempty"`
	cached     bool                // not serialized; aggregated into headers/stats
}

// ResultDoc is a completed job's deterministic result document.
type ResultDoc struct {
	Schema       string        `json:"schema"`
	Scenario     string        `json:"scenario"`
	ScenarioHash string        `json:"scenario_hash"`
	ResultHash   string        `json:"result_hash"`
	Kind         string        `json:"kind"` // "perf" or "chaos"
	Cells        []CellOutcome `json:"cells"`
}

// job tracks one admitted scenario through its cells.
type job struct {
	id        string
	scn       *scenario.Scenario
	kind      string
	deadline  time.Time
	remaining int
	cells     []CellOutcome
	run       []func() CellOutcome // one runner per cell, index-aligned
	done      chan struct{}
}

type counters struct {
	JobsAccepted  uint64 `json:"jobs_accepted"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsCompleted uint64 `json:"jobs_completed"`
	CellsRun      uint64 `json:"cells_run"`
	CellsCached   uint64 `json:"cells_cached"`
	CellsFailed   uint64 `json:"cells_failed"`
	CellsShed     uint64 `json:"cells_shed"` // cancelled by deadline or drain
}

// Server is the sweep service.
type Server struct {
	cfg   Config
	store *store.Store // nil when running storeless

	mu       sync.Mutex
	jobs     map[string]*job
	seq      int
	pending  int // admitted, unfinished cells
	draining bool
	n        counters
	reg      *obs.Registry
	latency  *stats.Histogram // cell wall latency, ms

	queue chan task
	wg    sync.WaitGroup
}

// task is one queued cell: the job it belongs to and its index.
type task struct {
	j   *job
	idx int
}

// New builds a Server and starts its worker pool. A store directory that
// cannot be created or written degrades to read-only or storeless operation
// rather than failing — the service's job is to keep simulating.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if (cfg.TraceRecord || cfg.TraceReplay) && cfg.StoreDir == "" {
		return nil, fmt.Errorf("serve: trace record/replay needs a store directory (traces live in the artifact store)")
	}
	s := &Server{
		cfg:  cfg,
		jobs: make(map[string]*job),
		reg:  obs.NewRegistry(),
	}
	// One bucket per 25ms, top bucket absorbing the tail.
	s.latency = s.reg.Histogram("serve", "cell_latency_ms", 25, 64)
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("serve: store: %w", err)
		}
		s.store = st
		if st.ReadOnly() {
			s.logf("store %s is read-only: serving cached results, not persisting new ones", cfg.StoreDir)
		}
		if removed, freed, err := st.Prune(cfg.StoreMaxBytes); err != nil {
			s.logf("%v", err)
		} else if removed > 0 {
			s.logf("store pruned %d entries (%d bytes) to fit max %d", removed, freed, cfg.StoreMaxBytes)
		}
	}
	s.queue = make(chan task, cfg.QueueDepth)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...interface{}) {
	fmt.Fprintf(s.cfg.Log, "specasan-serve: "+format+"\n", args...)
}

// Store exposes the server's store (nil when storeless); tests and /stats
// use it.
func (s *Server) Store() *store.Store { return s.store }

// ---------------------------------------------------------------------------
// Job admission and execution

// Submit validates and admits a scenario document. It returns the job, or an
// *HTTPError carrying the status the HTTP layer should answer with (429 with
// retry hint, 400, 503). label names the document in errors.
func (s *Server) Submit(doc []byte, label string) (*job, *HTTPError) {
	scn, err := scenario.Parse(doc, label, "submitted")
	if err != nil {
		return nil, &HTTPError{Status: http.StatusBadRequest, Msg: err.Error()}
	}
	j, err := s.buildJob(scn)
	if err != nil {
		return nil, &HTTPError{Status: http.StatusBadRequest, Msg: err.Error()}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &HTTPError{Status: http.StatusServiceUnavailable, Msg: "server is draining"}
	}
	if s.pending+len(j.cells) > s.cfg.QueueDepth {
		s.n.JobsRejected++
		return nil, &HTTPError{
			Status:     http.StatusTooManyRequests,
			Msg:        fmt.Sprintf("queue full: %d cells pending, job needs %d, budget %d", s.pending, len(j.cells), s.cfg.QueueDepth),
			RetryAfter: s.retryAfterLocked(),
		}
	}
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	j.deadline = time.Now().Add(s.cfg.JobTimeout)
	s.jobs[j.id] = j
	s.pending += len(j.cells)
	s.n.JobsAccepted++
	for i := range j.cells {
		s.queue <- task{j: j, idx: i} // admission guarantees capacity
	}
	s.logf("job %s: scenario %q (%s), %d cells admitted", j.id, j.scn.Name, j.kind, len(j.cells))
	return j, nil
}

// retryAfterLocked estimates seconds until enough of the backlog clears to
// retry, from the measured mean cell latency (1s floor when unknown).
func (s *Server) retryAfterLocked() int {
	meanMS := s.latency.MeanValue()
	if meanMS <= 0 {
		meanMS = 1000
	}
	secs := int(float64(s.pending) * meanMS / float64(s.cfg.Workers) / 1000)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// buildJob expands the scenario into cells and binds each cell's runner.
func (s *Server) buildJob(scn *scenario.Scenario) (*job, error) {
	j := &job{scn: scn, done: make(chan struct{})}
	if scn.Chaos != nil {
		j.kind = "chaos"
		cells, err := scn.CampaignCells()
		if err != nil {
			return nil, err
		}
		if len(cells) == 0 {
			return nil, fmt.Errorf("scenario %q expands to no cells", scn.Name)
		}
		opt := chaos.CampaignOptions{
			Scale: scn.Run.Scale, MaxCycles: scn.Run.MaxCycles, Workers: 1,
			ResultHash: scn.ResultHash(), NoSkipIdle: !scn.Run.SkipIdle,
		}
		if s.store != nil {
			opt.Store = chaos.DiskCampaignStore{S: s.store}
		}
		j.cells = make([]CellOutcome, len(cells))
		j.run = make([]func() CellOutcome, len(cells))
		for i, c := range cells {
			i, c := i, c
			j.cells[i] = CellOutcome{
				Bench: c.Spec.Name, Mitigation: c.Mit.String(),
				Kinds: kindSetName(c.Cfg.Kinds), Seed: c.Cfg.Seed,
			}
			j.run[i] = func() CellOutcome {
				out := j.cells[i]
				before := uint64(0)
				if s.store != nil {
					before = s.store.Stats().Hits
				}
				reps, err := chaos.RunCampaignOpts([]chaos.CampaignCell{c}, opt)
				if err != nil {
					out.Error = err.Error()
					return out
				}
				out.Chaos = chaos.CellRecordOf(reps[0])
				if s.store != nil && s.store.Stats().Hits > before {
					out.cached = true
				}
				return out
			}
		}
		return j, nil
	}

	j.kind = "perf"
	specs, err := scn.WorkloadSpecs()
	if err != nil {
		return nil, err
	}
	mits, err := scn.MitigationList()
	if err != nil {
		return nil, err
	}
	if len(specs) == 0 || len(mits) == 0 {
		return nil, fmt.Errorf("scenario %q expands to no cells", scn.Name)
	}
	opt := harness.OptionsFromScenario(scn)
	opt.TraceRecord = opt.TraceRecord || s.cfg.TraceRecord
	opt.TraceReplay = opt.TraceReplay || s.cfg.TraceReplay
	if s.store != nil {
		opt.Store = harness.DiskCellStore{S: s.store}
		opt.Artifacts = s.store
	} else if opt.TraceRecord || opt.TraceReplay {
		return nil, fmt.Errorf("scenario %q requests trace record/replay but the server runs storeless (start with a store directory)", scn.Name)
	}
	j.cells = make([]CellOutcome, 0, len(specs)*len(mits))
	for _, spec := range specs {
		for _, mit := range mits {
			spec, mit := spec, mit
			j.cells = append(j.cells, CellOutcome{Bench: spec.Name, Mitigation: mit.String()})
			idx := len(j.cells) - 1
			j.run = append(j.run, func() CellOutcome {
				out := j.cells[idx]
				r, cached, err := harness.RunCell(spec, mit, opt)
				if err != nil {
					out.Error = err.Error()
					return out
				}
				out.Perf = harness.CellResultOf(r)
				out.cached = cached
				return out
			})
		}
	}
	return j, nil
}

func kindSetName(ks []chaos.Kind) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return strings.Join(names, "+")
}

// worker drains the cell queue until it closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.runTask(t)
	}
}

// runTask executes one queued cell, or sheds it if the server is draining or
// the job's deadline has passed, then records the outcome.
func (s *Server) runTask(t task) {
	j := t.j
	var out CellOutcome
	shed := ""
	s.mu.Lock()
	if s.draining {
		shed = "cancelled: server shutting down"
	} else if time.Now().After(j.deadline) {
		shed = fmt.Sprintf("cancelled: job deadline (%s) exceeded before the cell started", s.cfg.JobTimeout)
	}
	s.mu.Unlock()

	if shed != "" {
		out = j.cells[t.idx]
		out.Error = shed
	} else {
		start := time.Now()
		out = s.runWithTimeout(j, t.idx)
		ms := uint64(time.Since(start).Milliseconds())
		s.mu.Lock()
		s.latency.Observe(ms)
		s.mu.Unlock()
	}

	s.mu.Lock()
	j.cells[t.idx] = out
	switch {
	case shed != "":
		s.n.CellsShed++
	case out.Error != "":
		s.n.CellsFailed++
	case out.cached:
		s.n.CellsCached++
	default:
		s.n.CellsRun++
	}
	s.pending--
	j.remaining++
	finished := j.remaining == len(j.cells)
	if finished {
		s.n.JobsCompleted++
	}
	s.mu.Unlock()
	if finished {
		close(j.done)
	}
}

// runWithTimeout runs cell idx of j under the per-cell wall deadline. The
// runner executes on its own goroutine with a panic fence; on timeout the
// worker abandons it (the simulation's cycle budget still bounds it).
func (s *Server) runWithTimeout(j *job, idx int) CellOutcome {
	ch := make(chan CellOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				out := j.cells[idx]
				out.Error = fmt.Sprintf("panic: %v\n%s", p, debug.Stack())
				ch <- out
			}
		}()
		ch <- j.run[idx]()
	}()
	timer := time.NewTimer(s.cfg.CellTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out
	case <-timer.C:
		out := j.cells[idx]
		out.Error = fmt.Sprintf("cell wall deadline (%s) exceeded; abandoned (cycle budget still bounds the stray run)", s.cfg.CellTimeout)
		return out
	}
}

// result assembles the deterministic result document of a finished job.
func (j *job) result() *ResultDoc {
	return &ResultDoc{
		Schema:       ResultSchema,
		Scenario:     j.scn.Name,
		ScenarioHash: j.scn.Hash(),
		ResultHash:   j.scn.ResultHash(),
		Kind:         j.kind,
		Cells:        j.cells,
	}
}

// cacheSummary counts cached/failed/uncacheable cells (for headers and job
// status). uncached counts cells that simulated but could not be cached —
// their CellResult carries a Note explaining why (e.g. a source override).
func (j *job) cacheSummary() (cached, failed, uncached int) {
	for _, c := range j.cells {
		if c.cached {
			cached++
		}
		if c.Error != "" {
			failed++
		}
		if c.Perf != nil && c.Perf.Note != "" {
			uncached++
		}
	}
	return
}

// ---------------------------------------------------------------------------
// HTTP layer

// HTTPError is a request failure with its HTTP status.
type HTTPError struct {
	Status     int
	Msg        string
	RetryAfter int // seconds; 0 = no header
}

func (e *HTTPError) Error() string { return e.Msg }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *HTTPError) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.RetryAfter))
	}
	writeJSON(w, e.Status, map[string]string{"error": e.Msg})
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// handleSweep admits a scenario document. With ?wait=1 the response is the
// finished job's deterministic result document (byte-identical across
// resubmissions; job id and cache counts travel in X-Job-Id / X-Cache-Hits /
// X-Uncached-Cells headers). Without it, 202 with the job id for later
// polling.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &HTTPError{Status: http.StatusMethodNotAllowed, Msg: "POST a scenario document"})
		return
	}
	doc, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, &HTTPError{Status: http.StatusBadRequest, Msg: err.Error()})
		return
	}
	j, herr := s.Submit(doc, "request")
	if herr != nil {
		writeError(w, herr)
		return
	}
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, map[string]interface{}{
			"id": j.id, "cells": len(j.cells), "state": "queued",
		})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client went away; the job keeps running and stays pollable.
		return
	}
	cached, failed, uncached := j.cacheSummary()
	w.Header().Set("X-Job-Id", j.id)
	w.Header().Set("X-Cache-Hits", fmt.Sprintf("%d/%d", cached, len(j.cells)))
	status := http.StatusOK
	if failed > 0 {
		w.Header().Set("X-Failed-Cells", fmt.Sprintf("%d", failed))
	}
	if uncached > 0 {
		// Cells that simulated but could not be cached (each carries a
		// per-cell note in its result, e.g. "uncached: source override").
		w.Header().Set("X-Uncached-Cells", fmt.Sprintf("%d", uncached))
	}
	writeJSON(w, status, j.result())
}

// handleJob reports one job's state, with the result document once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var remaining int
	if ok {
		remaining = len(j.cells) - j.remaining
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, &HTTPError{Status: http.StatusNotFound, Msg: fmt.Sprintf("unknown job %q", id)})
		return
	}
	select {
	case <-j.done:
		cached, failed, _ := j.cacheSummary()
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"id": j.id, "state": "done",
			"cached_cells": cached, "failed_cells": failed,
			"result": j.result(),
		})
	default:
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"id": j.id, "state": "running", "cells_pending": remaining,
		})
	}
}

// handleHealthz reports liveness and store health. Draining answers 503 so
// load balancers stop routing while in-flight work completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	storeState := "none"
	if s.store != nil {
		storeState = "rw"
		if s.store.ReadOnly() {
			storeState = "ro"
		}
	}
	status, state := http.StatusOK, "ok"
	if draining {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]string{"status": state, "store": storeState})
}

// statsDoc is the /stats payload.
type statsDoc struct {
	Schema string `json:"schema"`
	Queue  struct {
		Pending  int `json:"pending_cells"`
		Capacity int `json:"capacity"`
		Workers  int `json:"workers"`
	} `json:"queue"`
	Counters counters          `json:"counters"`
	Latency  []obs.HistSummary `json:"cell_latency"`
	Store    *store.Counters   `json:"store,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var d statsDoc
	d.Schema = StatsSchema
	s.mu.Lock()
	d.Queue.Pending = s.pending
	d.Queue.Capacity = s.cfg.QueueDepth
	d.Queue.Workers = s.cfg.Workers
	d.Counters = s.n
	d.Latency = s.reg.Summaries()
	s.mu.Unlock()
	if s.store != nil {
		c := s.store.Stats()
		d.Store = &c
	}
	writeJSON(w, http.StatusOK, &d)
}

// ---------------------------------------------------------------------------
// Lifecycle

// Drain stops admissions, cancels queued cells, waits for in-flight cells to
// finish (their results persist through the normal path), and returns.
// Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()
	s.logf("draining: no new jobs; finishing in-flight cells")
	s.wg.Wait()
	s.logf("drained")
}

// ListenAndServe serves on addr until SIGTERM/SIGINT, then drains and shuts
// the listener down cleanly. Signal handling lives here — not in the cmd —
// so the in-process integration test exercises the exact production path.
// ready, when non-nil, receives the bound address once the listener is up.
func (s *Server) ListenAndServe(addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	s.logf("listening on %s (workers=%d queue=%d)", ln.Addr(), s.cfg.Workers, s.cfg.QueueDepth)
	if ready != nil {
		ready <- ln.Addr()
	}
	select {
	case got := <-sig:
		s.logf("%v: shutting down", got)
		s.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		<-errc // http.ErrServerClosed
		return nil
	case err := <-errc:
		return err
	}
}
