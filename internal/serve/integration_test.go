package serve

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServiceLifecycleSIGTERM is the end-to-end service smoke: boot the
// daemon on loopback through the production ListenAndServe path (signal
// handling included), submit a scenario twice — the second response must be
// served from the store and byte-identical — then deliver a real SIGTERM to
// the process and require a clean drain: the listener closes, ListenAndServe
// returns nil, and everything persisted stays servable to a fresh daemon on
// the same store.
func TestServiceLifecycleSIGTERM(t *testing.T) {
	dir := t.TempDir()
	boot := func() (string, chan error) {
		s, err := New(Config{StoreDir: dir, Workers: 2, Log: io.Discard})
		if err != nil {
			t.Fatal(err)
		}
		ready := make(chan net.Addr, 1)
		done := make(chan error, 1)
		go func() { done <- s.ListenAndServe("127.0.0.1:0", ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr.String(), done
		case err := <-done:
			t.Fatalf("daemon failed to start: %v", err)
			return "", nil
		}
	}
	sigterm := func(done chan error) {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain returned %v, want nil", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not drain after SIGTERM")
		}
	}
	submit := func(base string) (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/sweep?wait=1", "application/json",
			strings.NewReader(quickDoc))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		return resp, body
	}

	base, done := boot()
	cold, coldBody := submit(base)
	if h := cold.Header.Get("X-Cache-Hits"); h != "0/2" {
		t.Fatalf("cold X-Cache-Hits = %q", h)
	}
	warm, warmBody := submit(base)
	if h := warm.Header.Get("X-Cache-Hits"); h != "2/2" {
		t.Fatalf("warm X-Cache-Hits = %q, want 2/2", h)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("cached response not byte-identical to cold response")
	}
	sigterm(done)

	// The drained daemon's listener is down.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still answering after drain")
	}

	// A fresh daemon on the same store serves everything from disk: the
	// completed cells were persisted before shutdown.
	base2, done2 := boot()
	again, againBody := submit(base2)
	if h := again.Header.Get("X-Cache-Hits"); h != "2/2" {
		t.Fatalf("restarted daemon X-Cache-Hits = %q, want 2/2", h)
	}
	if !bytes.Equal(coldBody, againBody) {
		t.Fatal("restarted daemon's response not byte-identical")
	}
	sigterm(done2)
}
