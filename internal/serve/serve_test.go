package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// quickDoc is a small two-cell perf scenario the tests submit: one workload,
// two mitigations, tiny scale.
const quickDoc = `{
	"name": "serve-test",
	"extends": "figure6",
	"workloads": ["511.povray_r"],
	"mitigations": ["Unsafe", "SpecASan"],
	"run": {"scale": 0.02, "max_cycles": 50000000, "workers": 1, "skip_idle": true}
}`

// chaosDoc is a two-cell chaos scenario (1 workload x 1 mitigation x 1 kind
// x 2 seeds).
const chaosDoc = `{
	"name": "serve-chaos-test",
	"extends": "chaos-smoke",
	"workloads": ["505.mcf_r"],
	"mitigations": ["SpecASan"],
	"run": {"scale": 0.02, "max_cycles": 50000000, "workers": 1, "skip_idle": true},
	"chaos": {"seeds": 2, "seed0": 1, "kinds": ["latency"], "rate": 0.02, "max_latency": 100, "verdict_seeds": 0}
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func submitWait(t *testing.T, ts *httptest.Server, doc string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep?wait=1", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSweepColdThenCachedByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir(), Workers: 2})

	cold, coldBody := submitWait(t, ts, quickDoc)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold submit: %d %s", cold.StatusCode, coldBody)
	}
	if h := cold.Header.Get("X-Cache-Hits"); h != "0/2" {
		t.Fatalf("cold X-Cache-Hits = %q, want 0/2", h)
	}
	var doc ResultDoc
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ResultSchema || doc.Kind != "perf" || len(doc.Cells) != 2 {
		t.Fatalf("unexpected result doc: %+v", doc)
	}
	for _, c := range doc.Cells {
		if c.Error != "" || c.Perf == nil || c.Perf.Cycles == 0 {
			t.Fatalf("bad cell: %+v", c)
		}
	}

	warm, warmBody := submitWait(t, ts, quickDoc)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm submit: %d %s", warm.StatusCode, warmBody)
	}
	if h := warm.Header.Get("X-Cache-Hits"); h != "2/2" {
		t.Fatalf("warm X-Cache-Hits = %q, want 2/2", h)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("cached response differs from cold:\n--- cold\n%s--- warm\n%s", coldBody, warmBody)
	}
	if id1, id2 := cold.Header.Get("X-Job-Id"), warm.Header.Get("X-Job-Id"); id1 == id2 {
		t.Fatalf("both responses claim job %q", id1)
	}
}

func TestChaosScenarioRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir(), Workers: 2})
	cold, coldBody := submitWait(t, ts, chaosDoc)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold submit: %d %s", cold.StatusCode, coldBody)
	}
	var doc ResultDoc
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kind != "chaos" || len(doc.Cells) != 2 {
		t.Fatalf("unexpected chaos doc: kind=%s cells=%d", doc.Kind, len(doc.Cells))
	}
	for _, c := range doc.Cells {
		if c.Error != "" || c.Chaos == nil || c.Chaos.Cycles == 0 || c.Seed == 0 {
			t.Fatalf("bad chaos cell: %+v", c)
		}
		if len(c.Chaos.Divergence) != 0 {
			t.Fatalf("chaos cell diverged: %+v", c.Chaos.Divergence)
		}
	}
	warm, warmBody := submitWait(t, ts, chaosDoc)
	if h := warm.Header.Get("X-Cache-Hits"); h != "2/2" {
		t.Fatalf("warm chaos X-Cache-Hits = %q, want 2/2", h)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("cached chaos response differs from cold")
	}
}

func TestCorruptStoreEntryResimulatedNotServed(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{StoreDir: dir, Workers: 2})
	_, coldBody := submitWait(t, ts, quickDoc)

	// Corrupt every stored entry.
	n := 0
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".entry") {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
			n++
		}
		return nil
	})
	if n != 2 {
		t.Fatalf("expected 2 stored entries, corrupted %d", n)
	}

	warm, warmBody := submitWait(t, ts, quickDoc)
	if h := warm.Header.Get("X-Cache-Hits"); h != "0/2" {
		t.Fatalf("corrupt entries served as hits: X-Cache-Hits = %q", h)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("re-simulated response differs from cold run")
	}
	if q := s.Store().Stats().Quarantined; q != 2 {
		t.Fatalf("quarantined %d entries, want 2", q)
	}
	// Third submission hits the healed cache.
	healed, _ := submitWait(t, ts, quickDoc)
	if h := healed.Header.Get("X-Cache-Hits"); h != "2/2" {
		t.Fatalf("store not healed: X-Cache-Hits = %q", h)
	}
}

func TestQueueOverflowShedsWith429(t *testing.T) {
	// Queue budget of 2 with a paused... simplest: budget 2 and a 4-cell
	// scenario can never be admitted.
	_, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1})
	big := strings.Replace(quickDoc, `"workloads": ["511.povray_r"]`,
		`"workloads": ["511.povray_r", "505.mcf_r"]`, 1)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized job got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestInvalidScenarioRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, doc := range []string{
		"{not json",
		`{"extends": "no-such-preset"}`,
		`{"run": {"scalle": 1}}`,            // unknown field: strict decode
		`{"workloads": ["no-such-kernel"]}`, // fails cell expansion
		`{"run": {"max_retries": 99}}`,      // fails validation
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("doc %q got %d, want 400", doc, resp.StatusCode)
		}
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(quickDoc))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || acc.ID == "" || acc.Cells != 2 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, acc)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string     `json:"state"`
			Result *ResultDoc `json:"result"`
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == "done" {
			if st.Result == nil || len(st.Result.Cells) != 2 {
				t.Fatalf("done without result: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job got %d, want 404", r.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir()})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]string
	json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || h["status"] != "ok" || h["store"] != "rw" {
		t.Fatalf("healthz: %d %v", r.StatusCode, h)
	}

	submitWait(t, ts, quickDoc)
	r, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var d statsDoc
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if d.Schema != StatsSchema {
		t.Fatalf("stats schema %q", d.Schema)
	}
	if d.Counters.JobsAccepted != 1 || d.Counters.JobsCompleted != 1 || d.Counters.CellsRun != 2 {
		t.Fatalf("stats counters: %+v", d.Counters)
	}
	if len(d.Latency) != 1 || d.Latency[0].Name != "cell_latency_ms" || d.Latency[0].N != 2 {
		t.Fatalf("stats latency: %+v", d.Latency)
	}
	if d.Store == nil || d.Store.Puts != 2 {
		t.Fatalf("stats store: %+v", d.Store)
	}
	_ = s
}

func TestJobDeadlineCancelsQueuedCells(t *testing.T) {
	// One worker, a deadline that expires immediately: the first cell may
	// start (dequeued before expiry check is racy either way), the rest
	// must be shed with a deadline error, and the job must still complete.
	s, err := New(Config{Workers: 1, JobTimeout: time.Nanosecond, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	j, herr := s.Submit([]byte(quickDoc), "test")
	if herr != nil {
		t.Fatal(herr)
	}
	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatal("job with expired deadline never completed")
	}
	shed := 0
	for _, c := range j.cells {
		if strings.Contains(c.Error, "job deadline") {
			shed++
		}
	}
	if shed == 0 {
		t.Fatalf("no cell shed by the expired deadline: %+v", j.cells)
	}
}

func TestCellDeadlineAbandonsRun(t *testing.T) {
	// A runner that outlives the cell wall deadline: the worker must record
	// the deadline error and move on instead of blocking the pool.
	s, err := New(Config{Workers: 1, CellTimeout: 10 * time.Millisecond, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	release := make(chan struct{})
	j := &job{
		cells: []CellOutcome{{Bench: "slow", Mitigation: "Unsafe"}},
		run: []func() CellOutcome{func() CellOutcome {
			<-release
			return CellOutcome{Bench: "slow", Mitigation: "Unsafe"}
		}},
		done: make(chan struct{}),
	}
	out := s.runWithTimeout(j, 0)
	close(release)
	if !strings.Contains(out.Error, "wall deadline") {
		t.Fatalf("cell not abandoned: %+v", out)
	}
	if out.Bench != "slow" || out.Mitigation != "Unsafe" {
		t.Fatalf("abandoned outcome lost its identity: %+v", out)
	}
}

func TestRunnerPanicBecomesCellError(t *testing.T) {
	s, err := New(Config{Workers: 1, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	j := &job{
		cells: []CellOutcome{{Bench: "boom", Mitigation: "Unsafe"}},
		run: []func() CellOutcome{func() CellOutcome {
			panic("runner exploded")
		}},
		done: make(chan struct{}),
	}
	out := s.runWithTimeout(j, 0)
	if !strings.Contains(out.Error, "runner exploded") ||
		!strings.Contains(out.Error, "goroutine") {
		t.Fatalf("panic not captured with stack: %+v", out)
	}
}

func TestSubmitAfterDrainRejected(t *testing.T) {
	s, err := New(Config{Workers: 1, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if _, herr := s.Submit([]byte(quickDoc), "test"); herr == nil ||
		herr.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %+v", herr)
	}
}

func TestRetryAfterEstimate(t *testing.T) {
	s, err := New(Config{Workers: 2, Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	s.mu.Lock()
	s.pending = 100
	if got := s.retryAfterLocked(); got < 1 {
		t.Errorf("retryAfterLocked() = %d, want >= 1", got)
	}
	s.latency.Observe(2000) // one 2s cell observed
	if got := s.retryAfterLocked(); got < 50 {
		t.Errorf("retryAfterLocked() with 2s mean = %d, want ~100s", got)
	}
	s.pending = 0
	s.mu.Unlock()
}

func TestReadOnlyStoreDegradesGracefully(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: cannot make a directory unwritable")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	_, ts := newTestServer(t, Config{StoreDir: dir})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]string
	json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if h["store"] != "ro" {
		t.Fatalf("healthz store = %q, want ro", h["store"])
	}
	// Sweeps still run; nothing persists.
	resp, body := submitWait(t, ts, quickDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep on ro store: %d %s", resp.StatusCode, body)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name": %q}`, strings.Repeat("x", 2<<20))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body got %d, want 400", resp.StatusCode)
	}
}
