package chaos

import (
	"bytes"
	"io"

	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/obs"
	"specasan/internal/par"
	"specasan/internal/workloads"
)

// CampaignCell is one run of the chaos campaign grid: a workload under a
// mitigation with one chaos configuration (kinds + seed). Cells are fully
// independent — each builds its own machine and injector — which is what
// makes the campaign safe to run on a worker pool.
type CampaignCell struct {
	Spec *workloads.Spec
	Mit  core.Mitigation
	Cfg  Config
}

// RunCampaign executes every cell with up to `workers` running concurrently
// (0 = GOMAXPROCS) and returns one report per cell, in cell order. The
// result is deterministic for any worker count: chaos randomness is seeded
// per cell, and reports are collected positionally. A cell that cannot run
// at all stops the campaign; the first error (in cell order) is returned
// with the reports of the cells before it.
func RunCampaign(cells []CampaignCell, scale float64, maxCycles uint64,
	workers int) ([]*RunReport, error) {
	return RunCampaignMetrics(cells, scale, maxCycles, workers, nil, "")
}

// RunCampaignMetrics is RunCampaign with an optional obs JSONL metrics
// stream: one record per successfully-run cell, buffered cell-locally and
// flushed in cell order, so the stream is byte-identical for any worker
// count. A nil metrics writer disables the instrumentation entirely.
// scenarioHash, when non-empty, is stamped into every record (the campaign
// scenario's canonical content hash). Extra attach hooks run on every cell's
// machine after construction.
func RunCampaignMetrics(cells []CampaignCell, scale float64, maxCycles uint64,
	workers int, metrics io.Writer, scenarioHash string,
	extraAttach ...func(*cpu.Machine)) ([]*RunReport, error) {

	reps := make([]*RunReport, len(cells))
	errs := make([]error, len(cells))
	bufs := make([]bytes.Buffer, len(cells))
	var flush func(i int)
	if metrics != nil {
		flush = func(i int) { io.Copy(metrics, &bufs[i]) }
	}
	par.ForEachOrdered(len(cells), workers, func(i int) {
		attach := append([]func(*cpu.Machine){}, extraAttach...)
		var met *obs.Metrics
		if metrics != nil {
			attach = append(attach, func(m *cpu.Machine) {
				met = obs.NewMetrics(len(m.Cores))
				m.AttachObs(nil, met)
			})
		}
		reps[i], errs[i] = RunWorkload(cells[i].Spec, cells[i].Mit, cells[i].Cfg,
			scale, maxCycles, attach...)
		if met != nil && errs[i] == nil {
			rec := met.Record(cells[i].Spec.Name, cells[i].Mit.String(),
				reps[i].Cycles, reps[i].Committed)
			rec.ScenarioHash = scenarioHash
			errs[i] = obs.WriteMetricsLine(&bufs[i], rec)
		}
	}, flush)
	for i, err := range errs {
		if err != nil {
			return reps[:i], err
		}
	}
	return reps, nil
}

// verdictCell pairs one Table 1 attack with one mitigation for the parallel
// invariance sweep.
type verdictCell struct {
	attack *attacks.Attack
	mit    core.Mitigation
}

// CheckVerdictInvarianceParallel is CheckVerdictInvariance on a worker pool:
// every (attack, mitigation) cell evaluates clean and chaotic verdicts
// independently, and drifts are returned in the serial sweep's order
// (attack-major, mitigation-minor) regardless of worker count.
func CheckVerdictInvarianceParallel(seed uint64, rate float64,
	mits []core.Mitigation, workers int) ([]VerdictDrift, error) {

	cfg := Config{Seed: seed, Kinds: TimingSafeKinds(), Rate: rate, MaxLatency: 150}
	var cells []verdictCell
	for _, a := range attacks.All() {
		for _, mit := range mits {
			cells = append(cells, verdictCell{attack: a, mit: mit})
		}
	}
	drifts := make([][]VerdictDrift, len(cells))
	errs := make([]error, len(cells))
	par.ForEachOrdered(len(cells), workers, func(i int) {
		a, mit := cells[i].attack, cells[i].mit
		base, _, err := a.Evaluate(mit)
		if err != nil {
			errs[i] = err
			return
		}
		inj, err := New(cfg)
		if err != nil {
			errs[i] = err
			return
		}
		chaotic, _, err := a.EvaluateWith(mit, inj.Attach)
		if err != nil {
			errs[i] = err
			return
		}
		if chaotic != base {
			drifts[i] = []VerdictDrift{{
				Attack: a.Name, Mitigation: mit,
				Baseline: base, Chaotic: chaotic,
			}}
		}
	}, nil)
	var out []VerdictDrift
	for i := range cells {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, drifts[i]...)
	}
	return out, nil
}
