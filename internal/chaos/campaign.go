package chaos

import (
	"bytes"
	"io"

	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/obs"
	"specasan/internal/par"
	"specasan/internal/workloads"
)

// CampaignCell is one run of the chaos campaign grid: a workload under a
// mitigation with one chaos configuration (kinds + seed). Cells are fully
// independent — each builds its own machine and injector — which is what
// makes the campaign safe to run on a worker pool.
//
// Key, when non-empty, is the cell's store key (derived by the caller, e.g.
// scenario.ChaosCellKey, which folds the kinds and seed into a
// filesystem-safe slug). It only matters when the campaign runs with a
// CampaignStore; a cell without a key always simulates.
type CampaignCell struct {
	Spec *workloads.Spec
	Mit  core.Mitigation
	Cfg  Config
	Key  string
}

// CampaignOptions bundles the campaign-wide knobs of RunCampaignOpts.
type CampaignOptions struct {
	// Scale is the workload scale factor; MaxCycles the per-cell cycle
	// budget; Workers the pool width (0 = GOMAXPROCS).
	Scale     float64
	MaxCycles uint64
	Workers   int
	// Metrics, when set, receives one obs JSONL record per
	// successfully-run cell, buffered cell-locally and flushed in cell
	// order — byte-identical for any worker count. Instrumented campaigns
	// never use the cell cache: a cached report cannot replay the stream.
	Metrics io.Writer
	// ScenarioHash, when non-empty, is stamped into every metrics record.
	ScenarioHash string
	// Store + ResultHash enable the cell cache: completed cells (verdicts
	// included) persist under (ResultHash, cell.Key) and later campaigns
	// reuse them without simulating. Either empty disables caching.
	Store      CampaignStore
	ResultHash string
	// Attach hooks run on every cell's machine after construction.
	Attach []func(*cpu.Machine)
	// NoSkipIdle disables event-driven idle-cycle skipping on every cell's
	// machine. Unlike Attach hooks it does not make the campaign
	// uncacheable: every campaign cell runs with the injector's PerCycle
	// hook installed, which bypasses idle skipping regardless, so the knob
	// is result-neutral here (and the result hash pins it anyway).
	NoSkipIdle bool
	// ParallelCores sets intra-machine core stepping on every cell's machine
	// (cpu.Machine.ParallelCores semantics: 0 auto, 1 serial, >= 2 one
	// goroutine per core). Result-neutral like NoSkipIdle: campaign cells
	// run with the injector's PerCycle hook installed, which forces the
	// machine's serial fallback regardless, and the determinism suite pins
	// serial-vs-parallel stepping bit-identical everywhere else.
	ParallelCores int
}

// RunCampaign executes every cell with up to `workers` running concurrently
// (0 = GOMAXPROCS) and returns one report per cell, in cell order. The
// result is deterministic for any worker count: chaos randomness is seeded
// per cell, and reports are collected positionally. A cell that cannot run
// at all stops the campaign; the first error (in cell order) is returned
// with the reports of the cells before it.
func RunCampaign(cells []CampaignCell, scale float64, maxCycles uint64,
	workers int) ([]*RunReport, error) {
	return RunCampaignOpts(cells, CampaignOptions{
		Scale: scale, MaxCycles: maxCycles, Workers: workers,
	})
}

// RunCampaignMetrics is RunCampaign with an optional obs JSONL metrics
// stream; see CampaignOptions.Metrics. Kept for callers predating the
// options struct.
func RunCampaignMetrics(cells []CampaignCell, scale float64, maxCycles uint64,
	workers int, metrics io.Writer, scenarioHash string,
	extraAttach ...func(*cpu.Machine)) ([]*RunReport, error) {
	return RunCampaignOpts(cells, CampaignOptions{
		Scale: scale, MaxCycles: maxCycles, Workers: workers,
		Metrics: metrics, ScenarioHash: scenarioHash, Attach: extraAttach,
	})
}

// RunCampaignOpts runs the campaign grid under one set of options. When a
// cell cache is configured (Store, ResultHash, cell keys) and the campaign
// is not instrumented, each cell first consults the store: a verified entry
// whose embedded identity matches the cell is rehydrated instead of
// simulated, and every cold result — divergent or not — is written back.
// Cached and cold campaigns produce identical reports because every cell is
// deterministic in (workload, mitigation, chaos config, scale, budget), all
// of which are pinned by the result hash and cell key.
func RunCampaignOpts(cells []CampaignCell, opt CampaignOptions) ([]*RunReport, error) {
	cacheable := opt.Store != nil && opt.ResultHash != "" &&
		opt.Metrics == nil && len(opt.Attach) == 0
	reps := make([]*RunReport, len(cells))
	errs := make([]error, len(cells))
	bufs := make([]bytes.Buffer, len(cells))
	var flush func(i int)
	if opt.Metrics != nil {
		flush = func(i int) { io.Copy(opt.Metrics, &bufs[i]) }
	}
	par.ForEachOrdered(len(cells), opt.Workers, func(i int) {
		c := cells[i]
		if cacheable && c.Key != "" {
			if rec, ok := opt.Store.GetCell(opt.ResultHash, c.Key); ok &&
				rec.matches(c.Spec, c.Mit, c.Cfg) {
				reps[i] = rec.report(c.Spec, c.Mit)
				return
			}
		}
		attach := append([]func(*cpu.Machine){}, opt.Attach...)
		if opt.NoSkipIdle {
			attach = append(attach, func(m *cpu.Machine) { m.SkipIdle = false })
		}
		if opt.ParallelCores != 0 {
			pc := opt.ParallelCores
			attach = append(attach, func(m *cpu.Machine) { m.ParallelCores = pc })
		}
		var met *obs.Metrics
		if opt.Metrics != nil {
			attach = append(attach, func(m *cpu.Machine) {
				met = obs.NewMetrics(len(m.Cores))
				m.AttachObs(nil, met)
			})
		}
		reps[i], errs[i] = RunWorkload(c.Spec, c.Mit, c.Cfg,
			opt.Scale, opt.MaxCycles, attach...)
		if errs[i] != nil {
			return
		}
		if met != nil {
			rec := met.Record(c.Spec.Name, c.Mit.String(),
				reps[i].Cycles, reps[i].Committed)
			rec.ScenarioHash = opt.ScenarioHash
			errs[i] = obs.WriteMetricsLine(&bufs[i], rec)
		}
		if cacheable && c.Key != "" && errs[i] == nil {
			opt.Store.PutCell(opt.ResultHash, c.Key, CellRecordOf(reps[i]))
		}
	}, flush)
	for i, err := range errs {
		if err != nil {
			return reps[:i], err
		}
	}
	return reps, nil
}

// verdictCell pairs one Table 1 attack with one mitigation for the parallel
// invariance sweep.
type verdictCell struct {
	attack *attacks.Attack
	mit    core.Mitigation
}

// CheckVerdictInvarianceParallel is CheckVerdictInvariance on a worker pool:
// every (attack, mitigation) cell evaluates clean and chaotic verdicts
// independently, and drifts are returned in the serial sweep's order
// (attack-major, mitigation-minor) regardless of worker count.
func CheckVerdictInvarianceParallel(seed uint64, rate float64,
	mits []core.Mitigation, workers int) ([]VerdictDrift, error) {

	cfg := Config{Seed: seed, Kinds: TimingSafeKinds(), Rate: rate, MaxLatency: 150}
	var cells []verdictCell
	for _, a := range attacks.All() {
		for _, mit := range mits {
			cells = append(cells, verdictCell{attack: a, mit: mit})
		}
	}
	drifts := make([][]VerdictDrift, len(cells))
	errs := make([]error, len(cells))
	par.ForEachOrdered(len(cells), workers, func(i int) {
		a, mit := cells[i].attack, cells[i].mit
		base, _, err := a.Evaluate(mit)
		if err != nil {
			errs[i] = err
			return
		}
		inj, err := New(cfg)
		if err != nil {
			errs[i] = err
			return
		}
		chaotic, _, err := a.EvaluateWith(mit, inj.Attach)
		if err != nil {
			errs[i] = err
			return
		}
		if chaotic != base {
			drifts[i] = []VerdictDrift{{
				Attack: a.Name, Mitigation: mit,
				Baseline: base, Chaotic: chaotic,
			}}
		}
	}, nil)
	var out []VerdictDrift
	for i := range cells {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, drifts[i]...)
	}
	return out, nil
}
