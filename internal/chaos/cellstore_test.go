package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/store"
	"specasan/internal/workloads"
)

// campaignFixture builds a small cacheable grid: two mitigations × two
// seeds, every cell keyed (the keys here stand in for scenario.ChaosCellKey;
// chaos itself never interprets them).
func campaignFixture(t *testing.T) ([]CampaignCell, CampaignOptions, *store.Store) {
	t.Helper()
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		t.Fatal("workload 505.mcf_r missing")
	}
	var cells []CampaignCell
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		for seed := uint64(1); seed <= 2; seed++ {
			cells = append(cells, CampaignCell{
				Spec: spec, Mit: mit,
				Cfg: Config{Seed: seed, Kinds: []Kind{LatencyJitter}, Rate: 0.02, MaxLatency: 100},
				Key: fmt.Sprintf("%s__%s__latency__s%d", spec.Name, mit, seed),
			})
		}
	}
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := CampaignOptions{
		Scale: 0.02, MaxCycles: 50_000_000,
		Store: DiskCampaignStore{S: s}, ResultHash: "cafe0123cafe0123",
	}
	return cells, opt, s
}

func formatReports(t *testing.T, reps []*RunReport) string {
	t.Helper()
	var b strings.Builder
	for i, rep := range reps {
		fmt.Fprintf(&b, "cell %d: wl=%s mit=%v seed=%d injected=%d summary=%q cycles=%d committed=%d div=%v\n",
			i, rep.Workload, rep.Mitigation, rep.Seed, rep.Injected,
			rep.Summary, rep.Cycles, rep.Committed, rep.Divergence)
	}
	return b.String()
}

func TestCampaignCacheRoundTrip(t *testing.T) {
	cells, opt, s := campaignFixture(t)
	cold, err := RunCampaignOpts(cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Puts; got != uint64(len(cells)) {
		t.Fatalf("cold campaign stored %d cells, want %d", got, len(cells))
	}
	warm, err := RunCampaignOpts(cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hits := s.Stats().Hits; hits != uint64(len(cells)) {
		t.Fatalf("warm campaign hit %d cells, want %d", hits, len(cells))
	}
	if a, b := formatReports(t, cold), formatReports(t, warm); a != b {
		t.Fatalf("cached reports differ:\n--- cold\n%s--- warm\n%s", a, b)
	}
}

func TestCampaignCorruptEntryResimulated(t *testing.T) {
	cells, opt, s := campaignFixture(t)
	cells = cells[:1]
	cold, err := RunCampaignOpts(cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	var entry string
	filepath.Walk(s.Root(), func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".entry") {
			entry = p
		}
		return nil
	})
	if entry == "" {
		t.Fatal("no entry written")
	}
	b, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(entry, b, 0o644); err != nil {
		t.Fatal(err)
	}
	warm, err := RunCampaignOpts(cells, opt)
	if err != nil {
		t.Fatalf("re-simulation after corruption failed: %v", err)
	}
	if s.Stats().Quarantined != 1 {
		t.Fatalf("corrupt entry not quarantined: %+v", s.Stats())
	}
	if formatReports(t, cold) != formatReports(t, warm) {
		t.Fatal("re-simulated report diverged from cold run")
	}
	// Healed: next campaign serves the rewritten entry.
	if _, err := RunCampaignOpts(cells, opt); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Hits == 0 {
		t.Fatal("cache not healed after re-simulation")
	}
}

func TestCampaignMislabelledEntryIsMiss(t *testing.T) {
	cells, opt, s := campaignFixture(t)
	cells = cells[:2] // same workload+mitigation, seeds 1 and 2
	if _, err := RunCampaignOpts(cells, opt); err != nil {
		t.Fatal(err)
	}
	// Graft cell 0's record under cell 1's key: identity check must reject
	// it (seed mismatch) rather than serve the wrong cell's verdict.
	rec, ok := opt.Store.GetCell(opt.ResultHash, cells[0].Key)
	if !ok {
		t.Fatal("cell 0 not cached")
	}
	opt.Store.PutCell(opt.ResultHash, cells[1].Key, rec)
	hits := s.Stats().Hits
	reps, err := RunCampaignOpts(cells[1:2], opt)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Hits != hits+1 {
		// the store served the payload; the identity check must have
		// rejected it and forced a simulation — verify via the report
		t.Logf("store hits %d -> %d", hits, s.Stats().Hits)
	}
	if reps[0].Seed != cells[1].Cfg.Seed {
		t.Fatalf("served seed %d for cell with seed %d", reps[0].Seed, cells[1].Cfg.Seed)
	}
}

func TestCampaignInstrumentedRunsBypassCache(t *testing.T) {
	cells, opt, s := campaignFixture(t)
	cells = cells[:1]
	var metrics strings.Builder
	opt.Metrics = &metrics
	if _, err := RunCampaignOpts(cells, opt); err != nil {
		t.Fatal(err)
	}
	if n := s.Stats(); n.Puts != 0 || n.Hits != 0 {
		t.Fatalf("instrumented campaign touched the cache: %+v", n)
	}
	if metrics.Len() == 0 {
		t.Fatal("metrics stream empty")
	}
}

func TestCampaignUnkeyedCellsAlwaysSimulate(t *testing.T) {
	cells, opt, s := campaignFixture(t)
	cells = cells[:1]
	cells[0].Key = ""
	for i := 0; i < 2; i++ {
		if _, err := RunCampaignOpts(cells, opt); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Stats(); n.Puts != 0 || n.Hits != 0 {
		t.Fatalf("unkeyed cell used the cache: %+v", n)
	}
}
