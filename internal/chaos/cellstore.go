package chaos

import (
	"specasan/internal/core"
	"specasan/internal/store"
	"specasan/internal/workloads"
)

// CellSchema versions the cached campaign-cell payload. Bump when CellRecord
// changes shape; older entries then read as misses.
const CellSchema = "specasan-chaos-cell/v1"

// CellRecord is the cacheable outcome of one campaign cell: everything a
// RunReport carries except the workload/mitigation identity, which the cell
// itself supplies on rehydration (and which GetCell cross-checks, so a
// misfiled entry can never surface as another cell's verdict). Divergence is
// cached too — a diverging run is still a deterministic, reproducible result,
// and serving it from the store keeps repeated campaigns honest instead of
// quietly green.
type CellRecord struct {
	Schema     string   `json:"schema"`
	Workload   string   `json:"workload"`
	Mitigation string   `json:"mitigation"`
	Seed       uint64   `json:"seed"`
	Injected   uint64   `json:"injected"`
	Summary    string   `json:"summary,omitempty"`
	Cycles     uint64   `json:"cycles"`
	Committed  uint64   `json:"committed"`
	Divergence []string `json:"divergence,omitempty"`
}

// CellRecordOf converts a cold run's report into its cacheable form.
func CellRecordOf(r *RunReport) *CellRecord {
	return &CellRecord{
		Schema:     CellSchema,
		Workload:   r.Workload,
		Mitigation: r.Mitigation.String(),
		Seed:       r.Seed,
		Injected:   r.Injected,
		Summary:    r.Summary,
		Cycles:     r.Cycles,
		Committed:  r.Committed,
		Divergence: r.Divergence,
	}
}

// report rehydrates the cached record for the given cell.
func (c *CellRecord) report(spec *workloads.Spec, mit core.Mitigation) *RunReport {
	return &RunReport{
		Workload:   spec.Name,
		Mitigation: mit,
		Seed:       c.Seed,
		Injected:   c.Injected,
		Summary:    c.Summary,
		Cycles:     c.Cycles,
		Committed:  c.Committed,
		Divergence: c.Divergence,
	}
}

// matches reports whether the record belongs to the cell asking for it.
func (c *CellRecord) matches(spec *workloads.Spec, mit core.Mitigation, cfg Config) bool {
	return c.Schema == CellSchema && c.Workload == spec.Name &&
		c.Mitigation == mit.String() && c.Seed == cfg.Seed
}

// CampaignStore is the cache RunCampaignOpts consults, keyed by the
// scenario's result-context hash plus the cell's store key (derived by the
// caller — typically scenario.ChaosCellKey — because the key encodes cell
// coordinates the chaos package does not interpret). Implementations must be
// safe for concurrent use and must treat any doubtful entry as a miss.
type CampaignStore interface {
	GetCell(resultHash, cellKey string) (*CellRecord, bool)
	// PutCell records a completed cell. Failures are the implementation's
	// to absorb: caching must never fail the campaign that produced the
	// result.
	PutCell(resultHash, cellKey string, c *CellRecord)
}

// DiskCampaignStore adapts the crash-safe on-disk store to the CampaignStore
// seam. The zero value is not usable; wrap a store.Open result.
type DiskCampaignStore struct {
	S *store.Store
}

// GetCell fetches a cached cell record; corrupt entries have already been
// quarantined by the store and read as misses.
func (d DiskCampaignStore) GetCell(resultHash, cellKey string) (*CellRecord, bool) {
	var c CellRecord
	ok, err := d.S.GetJSON(store.Key{Space: resultHash, Name: cellKey}, &c)
	if err != nil || !ok {
		return nil, false
	}
	return &c, true
}

// PutCell persists a cell record; errors (read-only store, full disk) are
// absorbed and counted by the store.
func (d DiskCampaignStore) PutCell(resultHash, cellKey string, c *CellRecord) {
	_ = d.S.PutJSON(store.Key{Space: resultHash, Name: cellKey}, c)
}
