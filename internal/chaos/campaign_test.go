package chaos

import (
	"fmt"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/workloads"
)

// TestRunCampaignParallelDeterminism checks the chaos-campaign half of the
// parallel-harness contract: the same cell grid must produce identical
// reports (seeds, injection counts, cycles, divergences) for any worker
// count, because chaos randomness is seeded per cell and every cell owns its
// machine and injector.
func TestRunCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		t.Fatal("workload 505.mcf_r missing")
	}
	var cells []CampaignCell
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		for _, ks := range [][]Kind{{LatencyJitter}, AllKinds()} {
			for seed := uint64(1); seed <= 3; seed++ {
				cells = append(cells, CampaignCell{
					Spec: spec, Mit: mit,
					Cfg: Config{Seed: seed, Kinds: ks, Rate: 0.02, MaxLatency: 200},
				})
			}
		}
	}

	run := func(workers int) string {
		reps, err := RunCampaign(cells, 0.02, 50_000_000, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for i, rep := range reps {
			fmt.Fprintf(&b, "cell %d: seed=%d injected=%d cycles=%d summary=%q div=%v\n",
				i, rep.Seed, rep.Injected, rep.Cycles, rep.Summary, rep.Divergence)
		}
		return b.String()
	}

	serial := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d diverges from serial:\n-- serial --\n%s\n-- workers=%d --\n%s",
				workers, serial, workers, got)
		}
	}
	if len(serial) == 0 {
		t.Fatal("campaign produced no reports")
	}
}
