package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/obs"
	"specasan/internal/workloads"
)

// TestRunCampaignParallelDeterminism checks the chaos-campaign half of the
// parallel-harness contract: the same cell grid must produce identical
// reports (seeds, injection counts, cycles, divergences) for any worker
// count, because chaos randomness is seeded per cell and every cell owns its
// machine and injector.
func TestRunCampaignParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		t.Fatal("workload 505.mcf_r missing")
	}
	var cells []CampaignCell
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		for _, ks := range [][]Kind{{LatencyJitter}, AllKinds()} {
			for seed := uint64(1); seed <= 3; seed++ {
				cells = append(cells, CampaignCell{
					Spec: spec, Mit: mit,
					Cfg: Config{Seed: seed, Kinds: ks, Rate: 0.02, MaxLatency: 200},
				})
			}
		}
	}

	run := func(workers int) string {
		reps, err := RunCampaign(cells, 0.02, 50_000_000, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for i, rep := range reps {
			fmt.Fprintf(&b, "cell %d: seed=%d injected=%d cycles=%d summary=%q div=%v\n",
				i, rep.Seed, rep.Injected, rep.Cycles, rep.Summary, rep.Divergence)
		}
		return b.String()
	}

	serial := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d diverges from serial:\n-- serial --\n%s\n-- workers=%d --\n%s",
				workers, serial, workers, got)
		}
	}
	if len(serial) == 0 {
		t.Fatal("campaign produced no reports")
	}
}

// TestRunCampaignParallelCoresByteIdentical pins the chaos half of the
// intra-machine parallelism contract: requesting parallel core stepping on
// a campaign must change nothing — every injected cell installs the fault
// driver's PerCycle hook, which makes the machine fall back to the serial
// walk, so the reports are byte-identical by construction. The test is the
// witness that the fallback actually engages (a racy parallel chaos run
// would produce different injection schedules).
func TestRunCampaignParallelCoresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		t.Fatal("workload 505.mcf_r missing")
	}
	var cells []CampaignCell
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		for seed := uint64(1); seed <= 2; seed++ {
			cells = append(cells, CampaignCell{
				Spec: spec, Mit: mit,
				Cfg: Config{Seed: seed, Kinds: AllKinds(), Rate: 0.02, MaxLatency: 200},
			})
		}
	}
	run := func(parallelCores int) string {
		reps, err := RunCampaignOpts(cells, CampaignOptions{
			Scale: 0.02, MaxCycles: 50_000_000,
			ParallelCores: parallelCores,
		})
		if err != nil {
			t.Fatalf("parallelCores=%d: %v", parallelCores, err)
		}
		var b strings.Builder
		for i, rep := range reps {
			fmt.Fprintf(&b, "cell %d: seed=%d injected=%d cycles=%d summary=%q div=%v\n",
				i, rep.Seed, rep.Injected, rep.Cycles, rep.Summary, rep.Divergence)
		}
		return b.String()
	}
	serial := run(1)
	if got := run(4); got != serial {
		t.Errorf("parallel-cores campaign diverges from serial:\n-- serial --\n%s\n-- parallel --\n%s",
			serial, got)
	}
}

// TestRunCampaignMetricsDeterminism checks the campaign's JSONL metrics
// stream: one record per cell in cell order, byte-identical for any worker
// count, and attaching metrics must not perturb the reports themselves.
func TestRunCampaignMetricsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		t.Fatal("workload 505.mcf_r missing")
	}
	var cells []CampaignCell
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		for seed := uint64(1); seed <= 2; seed++ {
			cells = append(cells, CampaignCell{
				Spec: spec, Mit: mit,
				Cfg: Config{Seed: seed, Kinds: []Kind{LatencyJitter}, Rate: 0.02, MaxLatency: 200},
			})
		}
	}

	run := func(workers int) (string, string) {
		var metrics bytes.Buffer
		reps, err := RunCampaignMetrics(cells, 0.02, 50_000_000, workers, &metrics, "")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var b strings.Builder
		for i, rep := range reps {
			fmt.Fprintf(&b, "cell %d: seed=%d injected=%d cycles=%d div=%v\n",
				i, rep.Seed, rep.Injected, rep.Cycles, rep.Divergence)
		}
		return metrics.String(), b.String()
	}

	serialMetrics, serialReps := run(1)
	lines := strings.Split(strings.TrimRight(serialMetrics, "\n"), "\n")
	if len(lines) != len(cells) {
		t.Fatalf("%d metrics lines, want %d", len(lines), len(cells))
	}
	for i, line := range lines {
		var rec obs.MetricsRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Bench != cells[i].Spec.Name || rec.Mitigation != cells[i].Mit.String() {
			t.Fatalf("line %d labels %s/%s, want cell %s/%v",
				i, rec.Bench, rec.Mitigation, cells[i].Spec.Name, cells[i].Mit)
		}
	}
	// Metrics must be an observer: the plain campaign sees the same reports.
	plain, err := RunCampaign(cells, 0.02, 50_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i, rep := range plain {
		fmt.Fprintf(&b, "cell %d: seed=%d injected=%d cycles=%d div=%v\n",
			i, rep.Seed, rep.Injected, rep.Cycles, rep.Divergence)
	}
	if b.String() != serialReps {
		t.Error("attaching metrics changed the campaign reports")
	}
	for _, workers := range []int{2, 4} {
		gotMetrics, gotReps := run(workers)
		if gotMetrics != serialMetrics {
			t.Errorf("workers=%d: metrics stream diverges from serial", workers)
		}
		if gotReps != serialReps {
			t.Errorf("workers=%d: reports diverge from serial", workers)
		}
	}
}
