// Package chaos is the deterministic fault-injection layer: it perturbs
// microarchitectural state — cache contents, branch predictions, memory
// timing, fill-buffer pressure, speculative flushes — without ever touching
// architectural semantics, then checks that the simulator still converges to
// the golden interpreter's architectural state and that the Table 1 security
// verdicts are perturbation-invariant.
//
// Every perturbation is drawn from one seeded PRNG, and the simulator is
// single-threaded, so a (seed, kinds, rate) triple replays the exact same
// fault schedule — a failing chaos run is a reproducible test case, not a
// flake.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"specasan/internal/core"
	"specasan/internal/cpu"
)

// Kind is one family of injected faults.
type Kind uint8

// The fault kinds. All perturb microarchitectural state only.
const (
	// Evict flushes a random valid L1D line (via the coherent flush path,
	// so dirty data is written back — the eviction is architecturally
	// invisible).
	Evict Kind = iota
	// Mispredict inverts random conditional-branch predictions. The flip
	// behaves exactly like an organic mispredict: squash, repair, retrain.
	Mispredict
	// LatencyJitter adds random extra cycles to DRAM line fetches
	// (data and tag-fetch traffic both go through this path).
	LatencyJitter
	// LFBStall delays random line-fill-buffer allocations — fill-buffer
	// pressure without changing what the buffer eventually holds.
	LFBStall
	// BranchDelay stretches random branches' issue-to-resolve latency,
	// widening the speculative window without changing the resolved
	// outcome.
	BranchDelay
	// SquashStorm forces full pipeline flushes from the (resolved) ROB
	// head at random cycles — redirect storms.
	SquashStorm

	numKinds
)

var kindNames = [numKinds]string{
	Evict:         "evict",
	Mispredict:    "mispredict",
	LatencyJitter: "latency",
	LFBStall:      "lfb-stall",
	BranchDelay:   "branch-delay",
	SquashStorm:   "squash-storm",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a kind name (as printed by String).
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault kind %q (have %s)",
		s, strings.Join(kindNames[:], ", "))
}

// AllKinds returns every fault kind.
func AllKinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// TimingSafeKinds returns the kinds that can only delay events, never
// change which transient instructions execute. Verdict-invariance runs are
// restricted to these, because the excluded kinds can legitimately defeat an
// attack PoC without indicating a simulator bug: Mispredict unlearns the
// PoC's trained prediction, SquashStorm cuts its speculation window short,
// and Evict turns the gadget's cached inputs into misses that push the
// secret access past the squash (the tag-valid Spectre v2/v5/BHB variants
// race exactly that window).
func TimingSafeKinds() []Kind {
	return []Kind{LatencyJitter, LFBStall, BranchDelay}
}

// Config shapes an injector.
type Config struct {
	Seed  uint64
	Kinds []Kind
	// Rate is the per-opportunity injection probability (0..1). Evictions
	// and squashes get one opportunity per cycle; the other kinds one per
	// affected event (prediction, DRAM fetch, LFB fill, branch issue).
	Rate float64
	// MaxLatency bounds the extra cycles one LatencyJitter/LFBStall/
	// BranchDelay injection adds (uniform in [1, MaxLatency]).
	MaxLatency uint64
	// Machine, when set, is the machine configuration RunWorkload builds
	// (its Cores field is overridden per workload); nil means
	// core.DefaultConfig. Scenario-driven campaigns set this so the stamped
	// scenario hash describes the machine that actually ran.
	Machine *core.Config
}

// DefaultConfig returns a config that exercises every fault kind at a rate
// high enough to fire hundreds of times in a small kernel run.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, Kinds: AllKinds(), Rate: 0.02, MaxLatency: 200}
}

// Injector drives fault injection for one machine run. It is not safe to
// share across machines: its PRNG stream is the run's fault schedule.
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	kinds  [numKinds]bool
	counts [numKinds]uint64
}

// New builds an injector.
func New(cfg Config) (*Injector, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("chaos: rate %v outside [0,1]", cfg.Rate)
	}
	if len(cfg.Kinds) == 0 {
		return nil, fmt.Errorf("chaos: no fault kinds selected")
	}
	inj := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Seed)))}
	for _, k := range cfg.Kinds {
		if int(k) >= int(numKinds) {
			return nil, fmt.Errorf("chaos: bad kind %d", k)
		}
		inj.kinds[k] = true
	}
	if inj.cfg.MaxLatency == 0 {
		inj.cfg.MaxLatency = 200
	}
	return inj, nil
}

// fire rolls the injection dice for kind k and counts a hit.
func (inj *Injector) fire(k Kind) bool {
	if !inj.kinds[k] || inj.rng.Float64() >= inj.cfg.Rate {
		return false
	}
	inj.counts[k]++
	return true
}

// extra draws an injected latency in [1, MaxLatency].
func (inj *Injector) extra() uint64 {
	return 1 + uint64(inj.rng.Int63n(int64(inj.cfg.MaxLatency)))
}

// Injected returns how many faults of kind k fired so far.
func (inj *Injector) Injected(k Kind) uint64 { return inj.counts[k] }

// Total returns how many faults fired across all kinds.
func (inj *Injector) Total() uint64 {
	var n uint64
	for _, c := range inj.counts {
		n += c
	}
	return n
}

// Summary renders the per-kind injection counts, sorted by kind name.
func (inj *Injector) Summary() string {
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if inj.kinds[k] {
			parts = append(parts, fmt.Sprintf("%s=%d", k, inj.counts[k]))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Attach wires the injector into every chaos hook of m. It must be called
// after machine construction and before Run; it chains with (rather than
// replaces) any PerCycle hook already installed.
func (inj *Injector) Attach(m *cpu.Machine) {
	hier := m.Hier
	hier.ChaosMemLatency = func(now uint64) uint64 {
		if inj.fire(LatencyJitter) {
			return inj.extra()
		}
		return 0
	}
	hier.ChaosLFBDelay = func(now uint64) uint64 {
		if inj.fire(LFBStall) {
			return inj.extra()
		}
		return 0
	}
	for _, c := range m.Cores {
		c := c
		c.Predictor().ChaosFlipCond = func(pc uint64) bool {
			return inj.fire(Mispredict)
		}
		c.ChaosBranchDelay = func(pc uint64) uint64 {
			if inj.fire(BranchDelay) {
				return inj.extra()
			}
			return 0
		}
	}
	prev := m.PerCycle
	m.PerCycle = func(cycle uint64) {
		if prev != nil {
			prev(cycle)
		}
		for i := range m.Cores {
			if inj.fire(Evict) {
				if !hier.ChaosEvictLine(i, inj.rng.Intn(1<<16), cycle) {
					inj.counts[Evict]-- // no valid line; nothing injected
				}
			}
			if inj.fire(SquashStorm) {
				if !m.Cores[i].ChaosFlush() {
					inj.counts[SquashStorm]--
				}
			}
		}
	}
}
