package chaos

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/isa"
	"specasan/internal/workloads"
)

// testSpec is a small kernel exercising every pipeline feature the chaos
// kinds perturb: branches, loads/stores, pointer chasing, mul/div, and (when
// built tagged) the MTE tagging loop.
func testSpec(threads int) *workloads.Spec {
	return &workloads.Spec{Name: "chaos-kernel", Suite: "test", Threads: threads,
		Params: workloads.Params{
			WorkingSetKB: 16, Iterations: 300, PointerChase: 1, DataBranches: 2,
			BoundsChecks: 1, ComputeOps: 3, MulDivOps: 1, StoreEvery: 2,
			ExtraLoads: 1,
		}}
}

// runOnce executes the test kernel under chaos and fingerprints the complete
// end state: cycle count, injection schedule, merged stats, and core 0's
// register file.
func runOnce(t *testing.T, cfg Config, mit core.Mitigation) string {
	t.Helper()
	spec := testSpec(1)
	prog, err := spec.Build(mit.MTEEnabled(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig()
	m, err := cpu.NewMachine(ccfg, mit, prog)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(m)
	res := m.Run(100_000_000)
	if res.TimedOut || res.Err != nil {
		t.Fatalf("run failed: %v", res)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d committed=%d inj=%s\n", res.Cycles, res.Committed, inj.Summary())
	keys := res.Stats.Keys()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, res.Stats.Get(k))
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		fmt.Fprintf(&b, "%v=%#x\n", r, m.Core(0).Reg(r))
	}
	return b.String()
}

// The injector must be fully deterministic: the same seed must reproduce the
// identical fault schedule, cycle count, stats, and architectural state.
func TestChaosDeterminism(t *testing.T) {
	cfg := DefaultConfig(42)
	a := runOnce(t, cfg, core.SpecASan)
	b := runOnce(t, cfg, core.SpecASan)
	if a != b {
		t.Fatalf("same seed, different run:\n--- first\n%s--- second\n%s", a, b)
	}
	cfg.Seed = 43
	if c := runOnce(t, cfg, core.SpecASan); c == a {
		t.Fatal("different seed produced the identical run (injector not firing?)")
	}
}

// Every fault kind, alone and combined, must leave committed architectural
// state bit-identical to the golden interpreter — with and without MTE.
func TestChaosGoldenEquivalence(t *testing.T) {
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		for _, kinds := range append(oneOfEach(), AllKinds()) {
			mit, kinds := mit, kinds
			t.Run(fmt.Sprintf("%v/%v", mit, kindNamesOf(kinds)), func(t *testing.T) {
				cfg := Config{Seed: 7, Kinds: kinds, Rate: 0.05, MaxLatency: 300}
				rep, err := RunWorkload(testSpec(1), mit, cfg, 1.0, 100_000_000)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Failed() {
					t.Fatalf("diverged (injected %d: %s):\n  %s",
						rep.Injected, rep.Summary, strings.Join(rep.Divergence, "\n  "))
				}
				if rep.Injected == 0 {
					t.Fatalf("no faults fired for kinds %v — vacuous pass", kinds)
				}
			})
		}
	}
}

// Multi-core SPMD runs must also converge per core.
func TestChaosGoldenEquivalenceMultiCore(t *testing.T) {
	rep, err := RunWorkload(testSpec(2), core.SpecASan,
		DefaultConfig(11), 1.0, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("diverged:\n  %s", strings.Join(rep.Divergence, "\n  "))
	}
	if rep.Injected == 0 {
		t.Fatal("no faults fired")
	}
}

func oneOfEach() [][]Kind {
	var out [][]Kind
	for _, k := range AllKinds() {
		out = append(out, []Kind{k})
	}
	return out
}

func kindNamesOf(ks []Kind) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return strings.Join(names, "+")
}

func TestKindParseRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
}

// A small slice of the verdict-invariance sweep (the full matrix is the
// specasan-chaos command's job): timing-safe chaos must not move Table 1
// verdicts for the canonical Spectre v1 row.
func TestVerdictInvarianceSample(t *testing.T) {
	drifts, err := CheckVerdictInvariance(5, 0.01,
		[]core.Mitigation{core.SpecASan})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drifts {
		t.Errorf("verdict drift: %s", d)
	}
}
