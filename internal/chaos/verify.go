package chaos

import (
	"fmt"
	"sort"

	"specasan/internal/asm"
	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/golden"
	"specasan/internal/isa"
	"specasan/internal/mem"
	"specasan/internal/mte"
	"specasan/internal/workloads"
)

// goldenInstBudget bounds the reference-interpreter replay of a chaos run.
const goldenInstBudget = 50_000_000

// VerifyGolden replays m's program on the golden interpreter (one replay per
// core, with the core's tag seed and thread id) and compares the committed
// architectural state: end condition, registers, SVC output, exit code, and
// — on single-core runs, where the machine's memory image has exactly one
// writer — every allocated memory byte and every MTE tag granule. Multi-core
// golden replays each own a private image, so cross-core memory is only
// checked implicitly through each core's loaded values.
//
// The returned slice describes every divergence found; empty means the chaos
// run was architecturally invisible, as required.
func VerifyGolden(m *cpu.Machine, prog *asm.Program) []string {
	var divs []string
	for i, c := range m.Cores {
		ip := golden.New(prog)
		ip.MTEOn = m.Mit.MTEEnabled()
		ip.TagSeed = cpu.TagSeedBase + uint64(i)
		ip.SetReg(isa.X0, uint64(i))
		g := ip.Run(goldenInstBudget)

		if g.Reason == golden.StopMaxInsts {
			divs = append(divs, fmt.Sprintf("core %d: golden replay exhausted %d-inst budget (reference run inconclusive)", i, uint64(goldenInstBudget)))
			continue
		}
		if g.Reason == golden.StopTagFault || g.Reason == golden.StopBadPC {
			if !c.Faulted {
				divs = append(divs, fmt.Sprintf("core %d: golden stopped with %v at %#x, machine did not fault", i, g.Reason, g.FaultPC))
			}
			continue // faulting runs stop mid-program; no further state to compare
		}
		if c.Faulted {
			divs = append(divs, fmt.Sprintf("core %d: machine faulted at %#x, golden exited cleanly", i, c.FaultPC))
			continue
		}
		if !c.Halted {
			divs = append(divs, fmt.Sprintf("core %d: still running (golden exited after %d insts)", i, g.Insts))
			continue
		}
		if c.ExitCode != g.ExitCode {
			divs = append(divs, fmt.Sprintf("core %d: exit code %#x, golden %#x", i, c.ExitCode, g.ExitCode))
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if r == isa.XZR {
				continue
			}
			if got, want := c.Reg(r), g.Regs[r]; got != want {
				divs = append(divs, fmt.Sprintf("core %d: %v = %#x, golden %#x", i, r, got, want))
			}
		}
		if string(c.Output) != string(g.Output) {
			divs = append(divs, fmt.Sprintf("core %d: output %q, golden %q", i, c.Output, g.Output))
		}
		if len(m.Cores) == 1 {
			divs = append(divs, diffMemory(m.Img, ip.Mem)...)
			for _, gr := range m.Img.Tags.DiffGranules(ip.Mem.Tags) {
				divs = append(divs, fmt.Sprintf("tag granule %#x: machine lock %d, golden %d",
					gr*mte.GranuleBytes, m.Img.Tags.LockAtGranule(gr), ip.Mem.Tags.LockAtGranule(gr)))
				if len(divs) > 32 {
					return divs
				}
			}
		}
		if len(divs) > 32 {
			return divs
		}
	}
	return divs
}

// diffMemory byte-compares two images over the union of their allocated
// pages (unallocated reads as zero on either side).
func diffMemory(a, b *mem.Image) []string {
	seen := map[uint64]bool{}
	var pages []uint64
	for _, p := range append(a.PageAddrs(), b.PageAddrs()...) {
		if !seen[p] {
			seen[p] = true
			pages = append(pages, p)
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var divs []string
	for _, page := range pages {
		for off := uint64(0); off < mem.PageBytes; off++ {
			addr := page + off
			if av, bv := a.ByteAt(addr), b.ByteAt(addr); av != bv {
				divs = append(divs, fmt.Sprintf("mem[%#x] = %#x, golden %#x", addr, av, bv))
				if len(divs) >= 16 {
					return divs
				}
			}
		}
	}
	return divs
}

// RunReport is the outcome of one chaos-perturbed workload run.
type RunReport struct {
	Workload   string
	Mitigation core.Mitigation
	Seed       uint64
	Injected   uint64 // total faults that fired
	Summary    string // per-kind injection counts
	Cycles     uint64
	Committed  uint64   // committed instructions across cores
	Divergence []string // empty = architectural state matched golden
}

// Failed reports whether the run diverged from the golden model.
func (r *RunReport) Failed() bool { return len(r.Divergence) > 0 }

// RunWorkload executes one benchmark kernel under one mitigation with chaos
// injection attached, then verifies the committed state against the golden
// interpreter. A watchdog verdict, a timeout, or any architectural
// divergence is reported in the result (not as an error — errors are
// reserved for being unable to run at all). Optional attach hooks run on the
// machine after construction and before the run (observability wiring).
func RunWorkload(spec *workloads.Spec, mit core.Mitigation, chaosCfg Config,
	scale float64, maxCycles uint64, attach ...func(*cpu.Machine)) (*RunReport, error) {

	prog, err := spec.Build(mit.MTEEnabled(), scale)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	cfg := core.DefaultConfig()
	if chaosCfg.Machine != nil {
		cfg = *chaosCfg.Machine
	}
	cfg.Cores = spec.Threads
	m, err := cpu.NewMachine(cfg, mit, prog)
	if err != nil {
		return nil, err
	}
	for i := 0; i < spec.Threads; i++ {
		m.Core(i).SetReg(isa.X0, uint64(i))
	}
	inj, err := New(chaosCfg)
	if err != nil {
		return nil, err
	}
	inj.Attach(m)
	for _, fn := range attach {
		fn(m)
	}
	res := m.Run(maxCycles)

	rep := &RunReport{
		Workload:   spec.Name,
		Mitigation: mit,
		Seed:       chaosCfg.Seed,
		Injected:   inj.Total(),
		Summary:    inj.Summary(),
		Cycles:     res.Cycles,
		Committed:  res.Committed,
	}
	switch {
	case res.Err != nil:
		rep.Divergence = append(rep.Divergence,
			fmt.Sprintf("watchdog: %v", res.Err))
	case res.TimedOut:
		rep.Divergence = append(rep.Divergence,
			fmt.Sprintf("timed out after %d cycles (cores %v)", res.Cycles, res.TimedOutCores()))
	default:
		rep.Divergence = VerifyGolden(m, prog)
	}
	return rep, nil
}

// VerdictDrift is one Table 1 cell whose verdict changed under chaos.
type VerdictDrift struct {
	Attack     string
	Mitigation core.Mitigation
	Baseline   attacks.Verdict
	Chaotic    attacks.Verdict
}

// String renders the drift.
func (d VerdictDrift) String() string {
	return fmt.Sprintf("%s under %v: %s -> %s",
		d.Attack, d.Mitigation, d.Baseline.Word(), d.Chaotic.Word())
}

// CheckVerdictInvariance evaluates every Table 1 attack under every given
// mitigation twice — clean, then with timing-safe chaos attached — and
// returns the cells whose verdict moved. The timing-safe kinds reorder and
// delay microarchitectural events without changing which transient
// instructions run, so a security verdict that depends on them indicates a
// race in the simulator's mitigation logic.
func CheckVerdictInvariance(seed uint64, rate float64,
	mits []core.Mitigation) ([]VerdictDrift, error) {

	cfg := Config{Seed: seed, Kinds: TimingSafeKinds(), Rate: rate, MaxLatency: 150}
	var drifts []VerdictDrift
	for _, a := range attacks.All() {
		for _, mit := range mits {
			base, _, err := a.Evaluate(mit)
			if err != nil {
				return nil, err
			}
			inj, err := New(cfg)
			if err != nil {
				return nil, err
			}
			chaotic, _, err := a.EvaluateWith(mit, inj.Attach)
			if err != nil {
				return nil, err
			}
			if chaotic != base {
				drifts = append(drifts, VerdictDrift{
					Attack: a.Name, Mitigation: mit,
					Baseline: base, Chaotic: chaotic,
				})
			}
		}
	}
	return drifts, nil
}
