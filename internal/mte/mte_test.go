package mte

import (
	"testing"
	"testing/quick"
)

func TestStripRemovesTopByte(t *testing.T) {
	p := uint64(0x0b00_0000_1234_5678)
	if got := Strip(p); got != 0x1234_5678 {
		t.Fatalf("Strip = %#x", got)
	}
	if got := Strip(0x1234); got != 0x1234 {
		t.Fatalf("Strip(untagged) = %#x", got)
	}
}

func TestKeyAndWithKey(t *testing.T) {
	p := uint64(0x4000)
	for k := Tag(0); k < NumTags; k++ {
		q := WithKey(p, k)
		if Key(q) != k {
			t.Fatalf("Key(WithKey(p,%d)) = %d", k, Key(q))
		}
		if Strip(q) != p {
			t.Fatalf("WithKey changed the address: %#x", Strip(q))
		}
	}
}

func TestWithKeyIdempotent(t *testing.T) {
	f := func(p uint64, a, b uint8) bool {
		ka, kb := Tag(a%16), Tag(b%16)
		return Key(WithKey(WithKey(p, ka), kb)) == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatchIsExactEquality(t *testing.T) {
	if Match(0, 7) {
		t.Error("untagged pointer must not reach tagged memory")
	}
	if Match(7, 0) {
		t.Error("tagged pointer must not reach untagged memory")
	}
	if !Match(5, 5) || !Match(0, 0) {
		t.Error("equal tags must match")
	}
	if Match(5, 6) {
		t.Error("different tags must not match")
	}
}

func TestGranuleIndex(t *testing.T) {
	if GranuleIndex(0) != 0 || GranuleIndex(15) != 0 || GranuleIndex(16) != 1 {
		t.Fatal("granule boundaries wrong")
	}
	// Tag bits must not perturb granule indexing.
	if GranuleIndex(WithKey(32, 9)) != 2 {
		t.Fatal("granule index must strip the key")
	}
}

func TestStorageSetAndCheck(t *testing.T) {
	s := NewStorage()
	base := uint64(0x1000)
	s.SetRange(base, 64, 5)

	ok := s.CheckAccess(WithKey(base, 5), 8)
	if !ok {
		t.Fatal("matching key must pass")
	}
	if s.CheckAccess(WithKey(base, 6), 8) {
		t.Fatal("mismatching key must fail")
	}
	if s.CheckAccess(base, 8) {
		t.Fatal("untagged pointer to tagged memory must fail")
	}
	// Access straddling out of the tagged region fails: the next granule
	// has lock 0, which a key-5 pointer does not match.
	if s.CheckAccess(WithKey(base+56, 5), 16) {
		t.Fatal("straddle into untagged granule must fail")
	}
	// Straddle into a differently tagged granule must fail too.
	s.SetRange(base+64, 16, 9)
	if s.CheckAccess(WithKey(base+56, 5), 16) {
		t.Fatal("straddle into mismatched granule must fail")
	}
}

func TestStorageRetagDetectsUAF(t *testing.T) {
	s := NewStorage()
	base := uint64(0x2000)
	s.SetRange(base, 32, 3)
	danglingPtr := WithKey(base, 3)
	if !s.CheckAccess(danglingPtr, 8) {
		t.Fatal("live pointer must pass")
	}
	// free(): retag the region.
	s.SetRange(base, 32, 7)
	if s.CheckAccess(danglingPtr, 8) {
		t.Fatal("dangling pointer must fail after retag")
	}
}

func TestSetLockZeroClears(t *testing.T) {
	s := NewStorage()
	s.SetLock(0x100, 4)
	if s.TaggedGranules() != 1 {
		t.Fatal("expected one tagged granule")
	}
	s.SetLock(0x100, 0)
	if s.TaggedGranules() != 0 {
		t.Fatal("lock 0 must clear the granule")
	}
}

func TestChooseTagRespectsExclusion(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		tag := ChooseTag(seed, 0b0000_0000_1111_1110) // exclude 1..7
		if tag == 0 || (tag >= 1 && tag <= 7) {
			t.Fatalf("seed %d: tag %d violates exclusion", seed, tag)
		}
	}
	// Everything excluded: fall back to 0.
	if got := ChooseTag(1, 0xffff); got != 0 {
		t.Fatalf("full exclusion should yield 0, got %d", got)
	}
}

func TestChooseTagDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		if ChooseTag(seed, 2) != ChooseTag(seed, 2) {
			t.Fatal("ChooseTag must be deterministic")
		}
	}
}

func TestChooseTagNeverZeroWithoutFullExclusion(t *testing.T) {
	f := func(seed uint64, excl uint16) bool {
		tag := ChooseTag(seed, excl)
		if excl|1 == 0xffff {
			return tag == 0 // full exclusion falls back to 0
		}
		return tag != 0 && excl&(1<<tag) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMultiGranule(t *testing.T) {
	s := NewStorage()
	s.SetRange(0x3000, 48, 2) // three granules
	lockAt := s.LockAtGranule
	if !Check(WithKey(0x3000, 2), 48, lockAt) {
		t.Fatal("48-byte matching access must pass")
	}
	s.SetLock(0x3020, 9) // poison the third granule
	if Check(WithKey(0x3000, 2), 48, lockAt) {
		t.Fatal("access crossing a mismatched granule must fail")
	}
	if !Check(WithKey(0x3000, 2), 32, lockAt) {
		t.Fatal("access stopping before the mismatch must pass")
	}
}
