// Package mte models the ARM Memory Tagging Extension: 4-bit allocation tags
// ("locks") attached to every 16-byte memory granule, and 4-bit address tags
// ("keys") carried in bits 56..59 of a pointer via Top-Byte Ignore (TBI).
//
// A memory access is safe when its pointer key equals the granule's lock.
// SpecASan extends exactly this check from the committed path to the
// speculative path; the check itself — implemented here — is shared by the
// caches, the line fill buffer, the store queue and the memory controller.
package mte

import "sort"

// Tag is a 4-bit MTE tag value (0..15). Tag 0 is the value of untagged
// memory and of pointers that never went through IRG/ADDG; an untagged
// pointer therefore matches untagged memory (0 == 0) and faults on tagged
// memory — which is precisely the property SpecASan relies on to stop
// attacks that reach tagged secrets through foreign pointers.
type Tag uint8

// TagBits is the width of an MTE tag.
const TagBits = 4

// NumTags is the number of distinct tag values (2^TagBits). The paper's §6
// discusses the collision consequences of this small space.
const NumTags = 1 << TagBits

// GranuleBytes is the MTE tag granule: one lock covers 16 bytes.
const GranuleBytes = 16

// tagShift positions the address tag in bits 56..59 of a 64-bit VA,
// inside the top byte that TBI ignores for translation.
const tagShift = 56

// addrMask strips the entire top byte (TBI) to recover the translated
// address.
const addrMask = (uint64(1) << tagShift) - 1

// Strip removes the top byte from a pointer, returning the address used for
// translation and cache indexing.
func Strip(ptr uint64) uint64 { return ptr & addrMask }

// Key extracts the 4-bit address tag (key) from a pointer.
func Key(ptr uint64) Tag { return Tag(ptr>>tagShift) & (NumTags - 1) }

// WithKey returns ptr with its address tag replaced by k.
func WithKey(ptr uint64, k Tag) uint64 {
	return (ptr &^ (uint64(NumTags-1) << tagShift)) | uint64(k&(NumTags-1))<<tagShift
}

// GranuleIndex returns the granule number containing the (stripped) address.
func GranuleIndex(addr uint64) uint64 { return Strip(addr) / GranuleBytes }

// AlignGranule rounds the (stripped) address down to its granule base.
func AlignGranule(addr uint64) uint64 { return Strip(addr) &^ (GranuleBytes - 1) }

// Match reports whether a pointer key is allowed to access a granule with
// the given lock: MTE requires exact equality.
func Match(key, lock Tag) bool { return key == lock }

// Check reports whether an access of size bytes at ptr is tag-safe against
// the provided lock lookup. It checks every granule the access touches.
func Check(ptr uint64, size int, lockAt func(granule uint64) Tag) bool {
	key := Key(ptr)
	first := GranuleIndex(ptr)
	last := GranuleIndex(Strip(ptr) + uint64(size) - 1)
	for g := first; g <= last; g++ {
		if !Match(key, lockAt(g)) {
			return false
		}
	}
	return true
}

// ChooseTag implements the IRG tag-generation rule: pick a tag from 1..15
// excluding the tags set in the exclusion mask. seed drives a deterministic
// LCG so simulations are reproducible. If every non-zero tag is excluded the
// result is tag 0 (the architecture allows implementation-defined behaviour
// here; untagged is the safe choice).
func ChooseTag(seed uint64, exclude uint16) Tag {
	// Exclude tag 0 always: IRG never generates the untagged wildcard
	// when used for allocation coloring.
	exclude |= 1
	avail := make([]Tag, 0, NumTags)
	for t := Tag(1); t < NumTags; t++ {
		if exclude&(1<<t) == 0 {
			avail = append(avail, t)
		}
	}
	if len(avail) == 0 {
		return 0
	}
	// Deterministic multiplicative hash of the seed.
	h := seed*6364136223846793005 + 1442695040888963407
	return avail[(h>>33)%uint64(len(avail))]
}

// Backing is the physical home of the allocation tags. The memory image
// implements it with a per-page tag sidecar (one lock byte per granule,
// stored next to the page's data so a data+tag pair is two indexed loads in
// the same frame); NewStorage falls back to a standalone sparse map for
// storages created without an image.
type Backing interface {
	// LockAtGranule returns the allocation tag of granule g (0 = untagged).
	LockAtGranule(g uint64) Tag
	// SetLockAtGranule sets the allocation tag of granule g.
	SetLockAtGranule(g uint64, t Tag)
	// TaggedGranules returns the number of granules with a non-zero lock.
	TaggedGranules() int
	// ForEachTagged calls f for every granule with a non-zero lock, in no
	// particular order.
	ForEachTagged(f func(g uint64, t Tag))
}

// Storage is the architectural allocation-tag store: lock values for every
// granule of physical memory. Real hardware carves this out of DRAM (the
// "tag storage" address space, §3.3.4); the simulator keeps it sparse.
//
// Storage is the authoritative copy; caches and the LFB hold coherent
// replicas alongside their data lines. It is a thin view over a Backing so
// the tags can live wherever the data lives.
type Storage struct {
	b Backing
}

// NewStorage returns an empty tag storage (all granules untagged) backed by
// a standalone sparse map.
func NewStorage() *Storage {
	return &Storage{b: granuleMap{locks: make(map[uint64]Tag)}}
}

// NewStorageOn returns a tag storage that reads and writes tags through b.
func NewStorageOn(b Backing) *Storage { return &Storage{b: b} }

// Lock returns the allocation tag of the granule containing addr.
func (s *Storage) Lock(addr uint64) Tag {
	return s.b.LockAtGranule(GranuleIndex(addr))
}

// LockAtGranule returns the allocation tag of granule g.
func (s *Storage) LockAtGranule(g uint64) Tag { return s.b.LockAtGranule(g) }

// SetLock sets the allocation tag for the granule containing addr.
func (s *Storage) SetLock(addr uint64, t Tag) {
	s.b.SetLockAtGranule(GranuleIndex(addr), t)
}

// SetRange tags every granule in [addr, addr+size).
func (s *Storage) SetRange(addr uint64, size uint64, t Tag) {
	if size == 0 {
		return
	}
	first := GranuleIndex(addr)
	last := GranuleIndex(Strip(addr) + size - 1)
	for g := first; g <= last; g++ {
		s.b.SetLockAtGranule(g, t)
	}
}

// CheckAccess reports whether an access of size bytes at ptr is tag-safe.
func (s *Storage) CheckAccess(ptr uint64, size int) bool {
	return Check(ptr, size, s.b.LockAtGranule)
}

// TaggedGranules returns the number of granules carrying a non-zero lock.
func (s *Storage) TaggedGranules() int { return s.b.TaggedGranules() }

// DiffGranules returns the granule indices whose locks differ between two
// storages, sorted — the tag half of the golden-equivalence check.
func (s *Storage) DiffGranules(o *Storage) []uint64 {
	var out []uint64
	s.b.ForEachTagged(func(g uint64, t Tag) {
		if o.b.LockAtGranule(g) != t {
			out = append(out, g)
		}
	})
	o.b.ForEachTagged(func(g uint64, t Tag) {
		// Granules tagged only on the other side; both-tagged mismatches
		// were already collected above.
		if s.b.LockAtGranule(g) == 0 {
			out = append(out, g)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// granuleMap is the standalone map backing for storages created without a
// memory image (unit tests, tools). Absent = 0 (untagged).
type granuleMap struct {
	locks map[uint64]Tag
}

func (m granuleMap) LockAtGranule(g uint64) Tag { return m.locks[g] }

func (m granuleMap) SetLockAtGranule(g uint64, t Tag) {
	if t == 0 {
		delete(m.locks, g)
		return
	}
	m.locks[g] = t
}

func (m granuleMap) TaggedGranules() int { return len(m.locks) }

func (m granuleMap) ForEachTagged(f func(g uint64, t Tag)) {
	for g, t := range m.locks {
		f(g, t)
	}
}
